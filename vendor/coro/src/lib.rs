//! Minimal stackful coroutines — "resumable continuations" — for the
//! cooperative simulation engine.
//!
//! A [`Coro`] owns a heap-allocated stack on which a closure runs until it
//! calls [`Yielder::suspend`]; control then returns to whoever called
//! [`Coro::resume`], and the next `resume` continues the closure exactly
//! where it left off. Everything happens on one OS thread: there is no
//! synchronization, a switch is a handful of register moves.
//!
//! On x86_64 Unix the switch is a small hand-written assembly routine that
//! saves the SysV callee-saved registers and swaps stack pointers (~tens of
//! nanoseconds). Every other target gets a portable fallback that maps each
//! coroutine onto a parked OS thread with a mutex/condvar handshake — slower,
//! but with identical semantics, so the engine behaves the same everywhere.
//!
//! Design notes for the fast path:
//!
//! * Stacks are plain heap allocations (default sizing is the caller's
//!   business). Linux commits pages lazily, so a generous stack costs
//!   address space, not resident memory. A canary word at the low end of
//!   the region gives best-effort overflow detection (checked whenever a
//!   stack is recycled); there are no guard pages.
//! * Finished stacks are returned to a thread-local pool and reused by the
//!   next coroutine of the same size, so a simulation that runs thousands
//!   of processors over its lifetime allocates only a handful of stacks.
//! * Cancellation is a forced unwind: dropping (or [`Coro::cancel`]-ing) a
//!   suspended coroutine resumes it one last time with a flag that makes
//!   `suspend` raise a [`ForcedUnwind`] sentinel via
//!   [`std::panic::resume_unwind`] — destructors on the coroutine stack run,
//!   the panic hook stays silent, and the unwind is caught at the coroutine
//!   boundary before it could ever reach the assembly frame.
//! * Unwinding never crosses the switch: the coroutine entry wraps the
//!   closure in `catch_unwind` and hands panic payloads back by value.
//! * The switch preserves exactly the SysV callee-saved integer registers
//!   (rbp, rbx, r12–r15) plus the stack pointer. Floating-point control
//!   state (mxcsr, x87 control word) is not swapped; nothing in this
//!   workspace changes rounding modes, and code that does must not hold a
//!   non-default mode across a `suspend`.

use std::any::Any;
use std::panic::{self, AssertUnwindSafe};

/// Sentinel panic payload used to unwind a cancelled coroutine's stack.
///
/// Raised by [`Yielder::suspend`] (via [`std::panic::resume_unwind`], so the
/// panic hook prints nothing) when the coroutine's owner cancelled it. User
/// code must let it pass through — catching it and continuing would turn
/// cancellation into a hang.
pub struct ForcedUnwind;

/// What a [`Coro::resume`] call observed.
pub enum Resume {
    /// The coroutine called [`Yielder::suspend`]; resume it again later.
    Yielded,
    /// The closure returned (payload `None`) or panicked (payload `Some`,
    /// ready for [`std::panic::resume_unwind`]). The coroutine may not be
    /// resumed again.
    Finished(Option<Box<dyn Any + Send>>),
}

#[cfg(all(target_arch = "x86_64", target_os = "linux", not(tmk_coro_threads)))]
mod imp {
    use super::*;
    use std::alloc::Layout;
    use std::cell::{Cell, RefCell};

    /// Low-word canary: detects (best-effort) a coroutine that ran off the
    /// bottom of its stack region.
    const CANARY: u64 = 0x7461_636b_5f65_6e64; // "tack_end"

    /// Max stacks kept per thread for reuse.
    const POOL_CAP: usize = 64;

    std::arch::global_asm!(
        ".text",
        ".balign 16",
        // tmk_coro_switch(save: *mut *mut u8 /* rdi */, to: *mut u8 /* rsi */)
        //
        // Saves the SysV callee-saved registers on the current stack, stores
        // the resulting stack pointer through `save`, installs `to` as the
        // stack pointer and restores the registers the matching earlier
        // switch (or the seed frame) left there. Returns on the new stack.
        ".globl tmk_coro_switch",
        ".hidden tmk_coro_switch",
        "tmk_coro_switch:",
        "push rbp",
        "push rbx",
        "push r12",
        "push r13",
        "push r14",
        "push r15",
        "mov [rdi], rsp",
        "mov rsp, rsi",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        "ret",
        // First activation of a coroutine lands here: the seed frame put the
        // Core pointer in r12 (see `seed_stack`). Realign and enter Rust;
        // `coro_entry` never returns (its final act is a switch away from
        // this stack), so fall into ud2 if it somehow does.
        ".globl tmk_coro_entry",
        ".hidden tmk_coro_entry",
        "tmk_coro_entry:",
        "mov rdi, r12",
        "and rsp, -16",
        "call {entry}",
        "ud2",
        entry = sym coro_entry,
    );

    extern "C" {
        fn tmk_coro_switch(save: *mut *mut u8, to: *mut u8);
        fn tmk_coro_entry();
    }

    /// Shared between a coroutine and its owner. Boxed and never moved while
    /// the coroutine exists (the seed frame holds a raw pointer to it).
    struct Core {
        /// Owner-side stack pointer, saved on every entry into the coroutine.
        caller_sp: Cell<*mut u8>,
        /// Coroutine-side stack pointer: the seed frame before the first
        /// resume, then wherever the last `suspend` saved it.
        coro_sp: Cell<*mut u8>,
        /// Set by `cancel`: the next `suspend` return raises [`ForcedUnwind`].
        cancel: Cell<bool>,
        finished: Cell<bool>,
        /// A non-cancellation panic that escaped the closure.
        payload: Cell<Option<Box<dyn Any + Send>>>,
        /// The closure, consumed by the first activation.
        entry: Cell<Option<Box<dyn FnOnce()>>>,
    }

    /// Rust-side first activation; `core` comes in from the seed frame.
    extern "C" fn coro_entry(core: *const Core) -> ! {
        let core = unsafe { &*core };
        let f = core.entry.take().expect("fresh coroutine has its closure");
        if let Err(p) = panic::catch_unwind(AssertUnwindSafe(f)) {
            if !p.is::<ForcedUnwind>() {
                core.payload.set(Some(p));
            }
        }
        core.finished.set(true);
        // Leave this stack for the last time. The save slot is scratch:
        // nothing ever switches back into a finished coroutine.
        let mut scratch: *mut u8 = std::ptr::null_mut();
        unsafe { tmk_coro_switch(&mut scratch, core.caller_sp.get()) };
        unreachable!("finished coroutine was resumed");
    }

    struct Stack {
        ptr: *mut u8,
        bytes: usize,
    }

    impl Stack {
        fn layout(bytes: usize) -> Layout {
            Layout::from_size_align(bytes, 64).expect("valid stack layout")
        }

        fn obtain(bytes: usize) -> Stack {
            // Round up so pooling by size has few distinct classes and the
            // top stays 16-aligned.
            let bytes = bytes.max(16 * 1024).next_multiple_of(4096);
            if let Some(s) = POOL.with(|p| {
                let mut p = p.borrow_mut();
                p.iter()
                    .rposition(|s| s.bytes == bytes)
                    .map(|i| p.swap_remove(i))
            }) {
                s.check_canary();
                return s;
            }
            let ptr = unsafe { std::alloc::alloc(Self::layout(bytes)) };
            assert!(!ptr.is_null(), "coroutine stack allocation failed");
            unsafe { (ptr as *mut u64).write(CANARY) };
            Stack { ptr, bytes }
        }

        fn recycle(self) {
            self.check_canary();
            POOL.with(|p| {
                let mut p = p.borrow_mut();
                if p.len() < POOL_CAP {
                    p.push(self);
                }
                // else: drop, freeing the allocation.
            });
        }

        /// One past the highest usable byte; 16-aligned.
        fn top(&self) -> *mut u8 {
            unsafe { self.ptr.add(self.bytes) }
        }

        fn check_canary(&self) {
            if unsafe { (self.ptr as *const u64).read() } != CANARY {
                // The region below the stack limit was overwritten: the
                // coroutine overflowed. State is unrecoverable.
                eprintln!("fatal: coroutine stack overflow detected (canary clobbered)");
                std::process::abort();
            }
        }
    }

    impl Drop for Stack {
        fn drop(&mut self) {
            unsafe { std::alloc::dealloc(self.ptr, Self::layout(self.bytes)) };
        }
    }

    thread_local! {
        static POOL: RefCell<Vec<Stack>> = const { RefCell::new(Vec::new()) };
    }

    /// Writes the frame `tmk_coro_switch` will restore on first entry:
    /// return address `tmk_coro_entry`, r12 = the Core pointer, every other
    /// callee-saved register zero. Returns the initial coroutine stack
    /// pointer.
    fn seed_stack(stack: &Stack, core: *const Core) -> *mut u8 {
        unsafe {
            let top = stack.top() as *mut u64;
            top.sub(1).write(tmk_coro_entry as *const () as u64); // ret -> entry
            top.sub(2).write(0); // rbp
            top.sub(3).write(0); // rbx
            top.sub(4).write(core as u64); // r12
            top.sub(5).write(0); // r13
            top.sub(6).write(0); // r14
            top.sub(7).write(0); // r15
            top.sub(7) as *mut u8
        }
    }

    /// A suspended (or not-yet-started) stackful coroutine.
    pub struct Coro {
        core: Box<Core>,
        stack: Option<Stack>,
        started: bool,
    }

    impl Coro {
        /// Creates a coroutine that will run `f` on its own `stack_bytes`
        /// stack once first resumed.
        ///
        /// # Safety
        ///
        /// `f` may borrow data that outlives the `Coro` value but not the
        /// `'static` lifetime (the closure's lifetime is erased). The caller
        /// must drop (or run to completion) the coroutine before anything
        /// `f` captures goes out of scope; `Drop` force-unwinds a suspended
        /// coroutine, so ordinary drop order satisfies this.
        pub unsafe fn new_unchecked<F>(stack_bytes: usize, f: F) -> Coro
        where
            F: FnOnce() + Send,
        {
            let f: Box<dyn FnOnce() + Send> = Box::new(f);
            let f: Box<dyn FnOnce()> = std::mem::transmute::<
                Box<dyn FnOnce() + Send + '_>,
                Box<dyn FnOnce()>,
            >(f);
            let stack = Stack::obtain(stack_bytes);
            let core = Box::new(Core {
                caller_sp: Cell::new(std::ptr::null_mut()),
                coro_sp: Cell::new(std::ptr::null_mut()),
                cancel: Cell::new(false),
                finished: Cell::new(false),
                payload: Cell::new(None),
                entry: Cell::new(Some(f)),
            });
            core.coro_sp.set(seed_stack(&stack, &*core));
            Coro {
                core,
                stack: Some(stack),
                started: false,
            }
        }

        /// Runs the coroutine until it suspends or finishes.
        ///
        /// # Panics
        ///
        /// Panics if the coroutine already finished.
        pub fn resume(&mut self) -> Resume {
            assert!(!self.core.finished.get(), "resume on a finished coroutine");
            self.started = true;
            unsafe { tmk_coro_switch(self.core.caller_sp.as_ptr(), self.core.coro_sp.get()) };
            if self.core.finished.get() {
                Resume::Finished(self.core.payload.take())
            } else {
                Resume::Yielded
            }
        }

        /// A [`Yielder`] for use *inside* this coroutine's closure.
        pub fn yielder(&self) -> Yielder {
            Yielder { core: &*self.core }
        }

        pub fn is_finished(&self) -> bool {
            self.core.finished.get()
        }

        /// Cancels the coroutine: an unstarted one simply drops its closure;
        /// a suspended one is resumed once more with the cancel flag set, so
        /// its stack unwinds (running destructors) via [`ForcedUnwind`].
        /// Idempotent; called automatically on drop.
        pub fn cancel(&mut self) {
            if self.core.finished.get() {
                return;
            }
            if !self.started {
                drop(self.core.entry.take());
                self.core.finished.set(true);
                return;
            }
            self.core.cancel.set(true);
            match self.resume() {
                Resume::Finished(_) => {}
                Resume::Yielded => {
                    // `suspend` re-raises on every return while the flag is
                    // set; yielding again means user code swallowed the
                    // sentinel. No way to reclaim the stack safely.
                    eprintln!("fatal: cancelled coroutine suspended again (ForcedUnwind swallowed)");
                    std::process::abort();
                }
            }
        }
    }

    impl Drop for Coro {
        fn drop(&mut self) {
            self.cancel();
            if let Some(stack) = self.stack.take() {
                stack.recycle();
            }
        }
    }

    /// Handle used inside a coroutine to give control back to the resumer.
    /// `Copy`, so closures capture it by value.
    #[derive(Clone, Copy)]
    pub struct Yielder {
        core: *const Core,
    }

    impl Yielder {
        /// Suspends the running coroutine; returns when the owner resumes
        /// it, or unwinds with [`ForcedUnwind`] if it was cancelled instead.
        ///
        /// Must only be called from inside the coroutine this yielder came
        /// from, on the thread that owns it.
        pub fn suspend(&self) {
            let core = unsafe { &*self.core };
            unsafe { tmk_coro_switch(core.coro_sp.as_ptr(), core.caller_sp.get()) };
            if core.cancel.get() {
                panic::resume_unwind(Box::new(ForcedUnwind));
            }
        }
    }

    #[cfg(test)]
    pub(super) fn pool_len() -> usize {
        POOL.with(|p| p.borrow().len())
    }
}

#[cfg(not(all(target_arch = "x86_64", target_os = "linux", not(tmk_coro_threads))))]
mod imp {
    //! Portable fallback: each coroutine runs on a parked OS thread with a
    //! strict mutex/condvar turn handshake, so exactly one of {owner,
    //! coroutine} ever runs. Same semantics as the assembly path, minus the
    //! speed; used on non-x86_64 targets (or with `--cfg tmk_coro_threads`
    //! to cross-check the two implementations).

    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::thread::JoinHandle;

    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Turn {
        Owner,
        Coro,
        Done,
    }

    struct Shared {
        turn: Mutex<Turn>,
        cv: Condvar,
        cancel: AtomicBool,
    }

    pub struct Coro {
        shared: Arc<Shared>,
        entry: Option<Box<dyn FnOnce() + Send>>,
        thread: Option<JoinHandle<Option<Box<dyn Any + Send>>>>,
        stack_bytes: usize,
        finished: bool,
    }

    impl Coro {
        /// See the x86_64 implementation for the API contract.
        ///
        /// # Safety
        ///
        /// As on x86_64: the closure's lifetime is erased; drop the `Coro`
        /// (which joins the worker thread) before captured borrows expire.
        pub unsafe fn new_unchecked<F>(stack_bytes: usize, f: F) -> Coro
        where
            F: FnOnce() + Send,
        {
            let f: Box<dyn FnOnce() + Send> = Box::new(f);
            let f: Box<dyn FnOnce() + Send + 'static> = std::mem::transmute::<
                Box<dyn FnOnce() + Send + '_>,
                Box<dyn FnOnce() + Send + 'static>,
            >(f);
            Coro {
                shared: Arc::new(Shared {
                    turn: Mutex::new(Turn::Owner),
                    cv: Condvar::new(),
                    cancel: AtomicBool::new(false),
                }),
                entry: Some(f),
                thread: None,
                stack_bytes,
                finished: false,
            }
        }

        pub fn resume(&mut self) -> Resume {
            assert!(!self.finished, "resume on a finished coroutine");
            {
                let mut turn = self.shared.turn.lock().unwrap();
                *turn = Turn::Coro;
                self.shared.cv.notify_all();
            }
            if let Some(f) = self.entry.take() {
                let shared = Arc::clone(&self.shared);
                self.thread = Some(
                    std::thread::Builder::new()
                        .name("tmk-coro".into())
                        .stack_size(self.stack_bytes)
                        .spawn(move || {
                            let r = panic::catch_unwind(AssertUnwindSafe(f));
                            let mut turn = shared.turn.lock().unwrap();
                            *turn = Turn::Done;
                            shared.cv.notify_all();
                            match r {
                                Err(p) if !p.is::<ForcedUnwind>() => Some(p),
                                _ => None,
                            }
                        })
                        .expect("spawn coroutine thread"),
                );
            }
            let mut turn = self.shared.turn.lock().unwrap();
            while *turn == Turn::Coro {
                turn = self.shared.cv.wait(turn).unwrap();
            }
            let done = *turn == Turn::Done;
            drop(turn);
            if done {
                self.finished = true;
                let payload = self.thread.take().and_then(|t| t.join().expect("coroutine thread"));
                Resume::Finished(payload)
            } else {
                Resume::Yielded
            }
        }

        pub fn yielder(&self) -> Yielder {
            Yielder {
                shared: Arc::as_ptr(&self.shared),
            }
        }

        pub fn is_finished(&self) -> bool {
            self.finished
        }

        pub fn cancel(&mut self) {
            if self.finished {
                return;
            }
            if self.thread.is_none() {
                drop(self.entry.take());
                self.finished = true;
                return;
            }
            self.shared.cancel.store(true, Ordering::SeqCst);
            match self.resume() {
                Resume::Finished(_) => {}
                Resume::Yielded => {
                    eprintln!("fatal: cancelled coroutine suspended again (ForcedUnwind swallowed)");
                    std::process::abort();
                }
            }
        }
    }

    impl Drop for Coro {
        fn drop(&mut self) {
            self.cancel();
        }
    }

    #[derive(Clone, Copy)]
    pub struct Yielder {
        shared: *const Shared,
    }

    impl Yielder {
        pub fn suspend(&self) {
            let shared = unsafe { &*self.shared };
            let mut turn = shared.turn.lock().unwrap();
            *turn = Turn::Owner;
            shared.cv.notify_all();
            while *turn == Turn::Owner {
                turn = shared.cv.wait(turn).unwrap();
            }
            drop(turn);
            if shared.cancel.load(Ordering::SeqCst) {
                panic::resume_unwind(Box::new(ForcedUnwind));
            }
        }
    }
}

pub use imp::{Coro, Yielder};

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    const STACK: usize = 256 * 1024;

    /// Test-only wrapper to move raw pointers into the (nominally `Send`)
    /// coroutine closure. Sound here: on the fast path everything stays on
    /// one thread, and the fallback's mutex handshake means owner and
    /// coroutine segments never run concurrently and are fully ordered.
    struct Sendable<T>(T);
    unsafe impl<T> Send for Sendable<T> {}
    impl<T: Copy> Sendable<T> {
        // An accessor (rather than direct field access) so that move
        // closures capture the whole wrapper, not just the raw pointer:
        // edition-2021 disjoint capture would otherwise strip the Send.
        fn get(&self) -> T {
            self.0
        }
    }

    #[test]
    fn ping_pong_interleaves() {
        let log: Cell<u64> = Cell::new(0);
        let push = |d: u64| log.set(log.get() * 10 + d);
        let mut yielder: Option<Yielder> = None;
        let yref: *mut Option<Yielder> = &mut yielder;
        let mut c = unsafe {
            Coro::new_unchecked(STACK, {
                let cell = Sendable::<*mut Option<Yielder>>(yref);
                let log = Sendable::<*const Cell<u64>>(&log);
                move || {
                    let y = unsafe { (*cell.get()).expect("yielder installed") };
                    let log = unsafe { &*log.get() };
                    let push = |d: u64| log.set(log.get() * 10 + d);
                    push(1);
                    y.suspend();
                    push(3);
                    y.suspend();
                    push(5);
                }
            })
        };
        unsafe { *yref = Some(c.yielder()) };
        assert!(matches!(c.resume(), Resume::Yielded));
        push(2);
        assert!(matches!(c.resume(), Resume::Yielded));
        push(4);
        assert!(matches!(c.resume(), Resume::Finished(None)));
        assert!(c.is_finished());
        c.cancel(); // idempotent on finished
        assert_eq!(log.get(), 12345);
    }

    #[test]
    fn borrows_local_state() {
        let mut counter = 0u64;
        {
            let p = Sendable::<*mut u64>(&mut counter);
            let mut c = unsafe {
                Coro::new_unchecked(STACK, move || {
                    // Non-'static borrow, allowed by new_unchecked's contract.
                    unsafe { *p.get() += 41 };
                })
            };
            assert!(matches!(c.resume(), Resume::Finished(None)));
        }
        assert_eq!(counter, 41);
    }

    #[test]
    fn panics_are_captured_and_rethrowable() {
        let mut c = unsafe { Coro::new_unchecked(STACK, || panic!("kaboom {}", 7)) };
        match c.resume() {
            Resume::Finished(Some(p)) => {
                let msg = p
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| p.downcast_ref::<&str>().copied());
                assert_eq!(msg, Some("kaboom 7"));
            }
            _ => panic!("expected a captured panic"),
        }
    }

    #[test]
    fn drop_cancels_and_runs_destructors() {
        struct Flag(Sendable<*const Cell<bool>>);
        impl Drop for Flag {
            fn drop(&mut self) {
                unsafe { (*self.0 .0).set(true) };
            }
        }
        let dropped = Cell::new(false);
        {
            let mut yielder: Option<Yielder> = None;
            let yref: *mut Option<Yielder> = &mut yielder;
            let mut c = unsafe {
                Coro::new_unchecked(STACK, {
                    let cell = Sendable::<*mut Option<Yielder>>(yref);
                    let flag = Flag(Sendable(&dropped));
                    move || {
                        let y = unsafe { (*cell.get()).expect("yielder installed") };
                        let _keep = flag;
                        loop {
                            y.suspend();
                        }
                    }
                })
            };
            unsafe { *yref = Some(c.yielder()) };
            assert!(matches!(c.resume(), Resume::Yielded));
            assert!(!dropped.get());
            // Dropping while suspended must force-unwind the stack.
        }
        assert!(dropped.get());
    }

    #[test]
    fn unstarted_coroutine_drops_cleanly() {
        let v = vec![1, 2, 3];
        let c = unsafe { Coro::new_unchecked(STACK, move || drop(v)) };
        drop(c); // closure (and its captures) dropped without running
    }

    #[test]
    fn many_coroutines_round_robin() {
        const N: usize = 100;
        let counters: Vec<Cell<u32>> = (0..N).map(|_| Cell::new(0)).collect();
        let yielders: Vec<Cell<Option<Yielder>>> = (0..N).map(|_| Cell::new(None)).collect();
        let mut coros: Vec<Coro> = (0..N)
            .map(|i| {
                let counter = Sendable::<*const Cell<u32>>(&counters[i]);
                let ycell = Sendable::<*const Cell<Option<Yielder>>>(&yielders[i]);
                unsafe {
                    Coro::new_unchecked(64 * 1024, move || {
                        let y = unsafe { &*ycell.get() }.get().expect("yielder installed");
                        for _ in 0..3 {
                            let c = unsafe { &*counter.get() };
                            c.set(c.get() + 1);
                            y.suspend();
                        }
                    })
                }
            })
            .collect();
        for (i, c) in coros.iter().enumerate() {
            yielders[i].set(Some(c.yielder()));
        }
        for round in 0..4 {
            for c in coros.iter_mut() {
                match c.resume() {
                    Resume::Yielded => assert!(round < 3),
                    Resume::Finished(None) => assert_eq!(round, 3),
                    Resume::Finished(Some(_)) => panic!("unexpected panic"),
                }
            }
        }
        drop(coros);
        assert!(counters.iter().all(|c| c.get() == 3));
    }

    #[cfg(all(target_arch = "x86_64", target_os = "linux", not(tmk_coro_threads)))]
    #[test]
    fn stacks_are_pooled_and_reused() {
        // Serial coroutines of one size should share a single stack.
        for _ in 0..5 {
            let mut c = unsafe { Coro::new_unchecked(STACK, || ()) };
            assert!(matches!(c.resume(), Resume::Finished(None)));
        }
        assert!(imp::pool_len() >= 1);
        assert!(imp::pool_len() <= 5);
    }
}
