//! Vendored subset of `crossbeam`: unbounded MPSC channels (over
//! `std::sync::mpsc`) and scoped threads (over `std::thread::scope`) with
//! the crossbeam 0.8 calling conventions. See `vendor/README.md`.

/// Multi-producer single-consumer channels.
pub mod channel {
    use std::sync::mpsc;

    /// The sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    impl<T> Sender<T> {
        /// Sends a value; fails only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive attempt.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking iterator over received values.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders are gone and the channel is drained.
        Disconnected,
    }
}

/// Scoped threads.
pub mod thread {
    /// A scope handle; closures spawned through it may borrow from the
    /// enclosing stack frame.
    #[derive(Clone, Copy, Debug)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope; it is joined (at the latest)
        /// when the scope ends.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// all of them are joined before this returns. Panics from unjoined
    /// threads propagate (so the `Err` arm is unreachable here, but the
    /// crossbeam-shaped signature is preserved).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_fifo() {
        let (tx, rx) = super::channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn scoped_threads_borrow() {
        let data = vec![1u64, 2, 3, 4];
        let sum = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(sum, 10);
    }
}
