//! Vendored subset of `rand` 0.8, bit-exact with the real crate for the
//! surface this workspace uses: `SmallRng::seed_from_u64` (SplitMix64 into
//! xoshiro256++, as rand 0.8 does on 64-bit targets) and
//! `Rng::gen_range(low..high)` for integers (Lemire widening-multiply
//! rejection sampling, rand 0.8's `sample_single` path). Seeded workload
//! generation therefore reproduces the exact streams the committed
//! `results/` files were generated with. See `vendor/README.md`.

use std::ops::Range;

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`next_u64`], as
    /// rand 0.8's xoshiro256++ does).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (rand 0.8 semantics:
    /// SplitMix64 expands the seed into the full state).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `low..high`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_single(range.start, range.end, self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Integer types uniformly sampleable from a half-open range.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[low, high)` using rand 0.8's single-sample
    /// algorithm (identical output stream).
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// 128-bit widening multiply returning `(high, low)` 64-bit halves.
#[inline]
fn wmul64(a: u64, b: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128);
    ((wide >> 64) as u64, wide as u64)
}

macro_rules! impl_sample_uniform_64 {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: empty range");
                // rand 0.8 `sample_single_inclusive(low, high - 1)`:
                let range = (high.wrapping_sub(low) as u64)
                    .wrapping_sub(1)
                    .wrapping_add(1);
                if range == 0 {
                    // Full integer domain.
                    return rng.next_u64() as $ty;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.next_u64();
                    let (hi, lo) = wmul64(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_64!(i64, u64, isize, usize);

macro_rules! impl_sample_uniform_32 {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: empty range");
                // rand 0.8 uses a u32 "large" type for <= 32-bit integers.
                let range = ((high.wrapping_sub(low)) as u32)
                    .wrapping_sub(1)
                    .wrapping_add(1);
                if range == 0 {
                    return rng.next_u32() as $ty;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.next_u32();
                    let wide = (v as u64) * (range as u64);
                    let (hi, lo) = ((wide >> 32) as u32, wide as u32);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_32!(i8, u8, i16, u16, i32, u32);

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// rand 0.8's `SmallRng` on 64-bit targets: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // rand_core 0.6's default `seed_from_u64` (PCG32-based seed
            // expansion): rand 0.8's `SmallRng` does not forward to
            // xoshiro's SplitMix64 override, so this is the expansion the
            // real crate uses (verified against the committed `results/`).
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            let mut bytes = [0u8; 32];
            for chunk in bytes.chunks_mut(4) {
                state = state.wrapping_mul(MUL).wrapping_add(INC);
                let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
                let rot = (state >> 59) as u32;
                let x = xorshifted.rotate_right(rot);
                chunk.copy_from_slice(&x.to_le_bytes());
            }
            let mut s = [0u64; 4];
            for (slot, chunk) in s.iter_mut().zip(bytes.chunks(8)) {
                *slot = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    /// Reference values for `SmallRng::seed_from_u64(0)` under rand 0.8
    /// semantics (PCG32 seed expansion into xoshiro256++), cross-checked
    /// against an independent implementation of both algorithms.
    #[test]
    fn matches_rand_08_stream() {
        let mut rng = SmallRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                8251690495967107212,
                8100708189767581495,
                18075600217600495122,
                8525480561105331059
            ]
        );
    }

    #[test]
    fn gen_range_bounds_and_determinism() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: i64 = a.gen_range(0..1000);
            assert!((0..1000).contains(&x));
            assert_eq!(x, b.gen_range(0..1000));
        }
        let y: u32 = a.gen_range(5..6);
        assert_eq!(y, 5);
    }
}
