//! `tmk` — a reproduction of *Software Versus Hardware Shared-Memory
//! Implementation: A Case Study* (Cox, Dwarkadas, Keleher, Lu, Rajamony,
//! Zwaenepoel; ISCA 1994).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`dsm`] — the TreadMarks-style lazy-release-consistency DSM protocol
//!   and its in-process multi-threaded runtime (the paper's software side).
//! * [`sim`] — the deterministic execution-driven simulation engine.
//! * [`trace`] — structured event tracing and cycle attribution.
//! * [`mem`] — cache, snooping-bus and directory coherence models.
//! * [`net`] — ATM LAN / crossbar network and software-overhead models.
//! * [`parmacs`] — the PARMACS-like parallel programming interface.
//! * [`machines`] — the five assembled platforms (DEC, SGI 4D/480-like,
//!   AS, AH, HS).
//! * [`apps`] — the application suite (SOR, TSP, Water, M-Water, ILINK).
//!
//! See `README.md` for a tour and `DESIGN.md` for the experiment index.

pub use tmk_apps as apps;
pub use tmk_core as dsm;
pub use tmk_machines as machines;
pub use tmk_mem as mem;
pub use tmk_net as net;
pub use tmk_parmacs as parmacs;
pub use tmk_sim as sim;
pub use tmk_trace as trace;
