//! The simulator must be fully deterministic: identical configurations
//! produce identical cycle counts, traffic and checksums, run after run.
//! (This is what makes the reproduction's numbers meaningful at all.)

use tmk::apps::{sor, tsp, water};
use tmk::machines::{run_workload, run_workload_traced, Platform};
use tmk::parmacs::Workload;

fn fingerprint<W: Workload>(p: &Platform, w: &W) -> (u64, Vec<u64>, u64, u64) {
    let out = run_workload(p, w);
    (
        out.report.cycles,
        out.report.proc_cycles.clone(),
        out.report.traffic.total_msgs(),
        out.report.traffic.total_bytes(),
    )
}

#[test]
fn treadmarks_runs_are_identical() {
    let w = sor::Sor::tiny();
    let p = Platform::treadmarks(4);
    assert_eq!(fingerprint(&p, &w), fingerprint(&p, &w));
}

#[test]
fn sgi_runs_are_identical() {
    let w = water::Water::tiny(water::WaterMode::Original);
    let p = Platform::Sgi { procs: 4 };
    assert_eq!(fingerprint(&p, &w), fingerprint(&p, &w));
}

#[test]
fn hybrid_runs_are_identical() {
    let w = sor::Sor::tiny();
    let p = Platform::hs_sim(2, 4);
    assert_eq!(fingerprint(&p, &w), fingerprint(&p, &w));
}

#[test]
fn directory_runs_are_identical() {
    let w = tsp::Tsp::new(8);
    let p = Platform::ah(8);
    assert_eq!(fingerprint(&p, &w), fingerprint(&p, &w));
}

#[test]
fn different_inputs_give_different_timings() {
    let p = Platform::treadmarks(4);
    let a = fingerprint(&p, &sor::Sor::tiny());
    let b = {
        let mut w = sor::Sor::tiny();
        w.iters += 1;
        fingerprint(&p, &w)
    };
    assert_ne!(a.0, b.0, "an extra iteration must take longer");
    assert!(b.0 > a.0);
}

#[test]
fn more_processors_change_the_clock_vector_not_the_answer() {
    let w = sor::Sor::tiny();
    let out2 = run_workload(&Platform::treadmarks(2), &w);
    let out4 = run_workload(&Platform::treadmarks(4), &w);
    assert_eq!(out2.report.proc_cycles.len(), 2);
    assert_eq!(out4.report.proc_cycles.len(), 4);
    let sum2: f64 = out2.results.iter().sum();
    let sum4: f64 = out4.results.iter().sum();
    assert!((sum2 - sum4).abs() < 1e-9 * sum2.abs());
}

#[test]
fn traced_runs_record_byte_identical_traces() {
    let w = sor::Sor::tiny();
    let p = Platform::treadmarks(4);
    let (out_a, buf_a) = run_workload_traced(&p, &w, Some(1 << 16));
    let (out_b, buf_b) = run_workload_traced(&p, &w, Some(1 << 16));
    let (trace_a, trace_b) = (
        buf_a.expect("tracing armed").chrome_trace(),
        buf_b.expect("tracing armed").chrome_trace(),
    );
    assert_eq!(
        tmk::trace::first_divergence(&trace_a, &trace_b),
        None,
        "identical runs recorded diverging traces"
    );
    assert_eq!(trace_a, trace_b, "traces must match byte for byte");
    assert_eq!(out_a.report.proc_cycles, out_b.report.proc_cycles);
}

#[test]
fn tracing_never_alters_the_simulation() {
    // A traced run must report exactly what the untraced run reports —
    // the tracer observes the clock, it never moves it.
    let w = tsp::Tsp::new(8);
    for p in [Platform::treadmarks(4), Platform::hs_sim(2, 2), Platform::Sgi { procs: 4 }] {
        let plain = run_workload(&p, &w);
        let (traced, buf) = run_workload_traced(&p, &w, Some(1 << 16));
        // Normalize the host-side wall time: it is the one field allowed
        // to differ between two runs of the same simulation.
        let sim_json = |r: &tmk::machines::RunReport| {
            let mut r = r.clone();
            r.host_ms = 0.0;
            r.to_json().render()
        };
        assert_eq!(
            sim_json(&plain.report),
            sim_json(&traced.report),
            "{}: traced report deviates from untraced",
            p.name()
        );
        assert_eq!(plain.results, traced.results, "{}", p.name());
        // And the trace it recorded accounts for every cycle.
        buf.expect("tracing armed")
            .check(&traced.report.proc_cycles)
            .unwrap_or_else(|e| panic!("{}: {e}", p.name()));
    }
}
