//! Cross-engine equivalence: the threaded engine (one OS thread per
//! simulated processor) and the cooperative engine (single-threaded event
//! loop over stackful coroutines) are two implementations of the same
//! conservative simulation semantics, and must be byte-for-byte
//! interchangeable. These tests pin that down on randomized runs — LRC and
//! IVY, clean and lossy networks, GC on and off — and on the watchdog
//! paths, where even the panic messages must compare equal.

use std::panic::{catch_unwind, AssertUnwindSafe};

use proptest::prelude::*;

use tmk::apps::{sor, tsp};
use tmk::dsm::RetransmitPolicy;
use tmk::machines::{
    run_workload_traced_with, set_op_trace, DsmProtocol, DsmTuning, Platform,
};
use tmk::net::FaultPlan;
use tmk::parmacs::Workload;
use tmk::sim::EngineKind;

fn dsm_platform(procs: usize, ivy: bool, seed: u64, drop_permille: u32, gc: bool) -> Platform {
    Platform::AsCluster {
        procs,
        part1: false,
        so: None,
        tuning: DsmTuning {
            protocol: if ivy { DsmProtocol::Ivy } else { DsmProtocol::Lrc },
            faults: (drop_permille > 0)
                .then(|| FaultPlan::drop_rate(seed, drop_permille as f64 / 1000.0)),
            reliability: (drop_permille > 0).then(RetransmitPolicy::default),
            // Safety net far above any legitimate run, in case a random
            // configuration ever livelocks retransmission.
            watchdog_budget: Some(4_000_000_000_000),
            // Tiny inputs carry little metadata; threshold 1 collects at
            // every barrier, exercising the GC protocol end to end.
            gc: gc.then_some(1),
            ..Default::default()
        },
    }
}

/// Everything one engine produced for a run, flattened for comparison:
/// the report JSON with the host-side fields (`engine`, `host_ms`)
/// normalized away, the per-processor checksums, the engine op trace, and
/// the six-category attribution ledger.
fn fingerprint<W: Workload>(kind: EngineKind, p: &Platform, w: &W) -> String {
    let (out, buf) = run_workload_traced_with(kind, p, w, Some(0));
    let mut report = out.report.clone();
    report.engine = EngineKind::default();
    report.host_ms = 0.0;
    format!(
        "report={}\nchecksums={:?}\nops={:?}\nbreakdown={:?}",
        report.to_json().render(),
        out.results,
        out.op_trace,
        buf.expect("tracing armed").breakdown(),
    )
}

proptest! {
    // Each case simulates the same (tiny) run once per engine; a handful of
    // cases covers LRC/IVY x clean/lossy x GC on/off x 2-4 processors.
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn engines_agree_on_random_dsm_runs(
        procs in 2usize..5,
        ivy in any::<bool>(),
        seed in any::<u64>(),
        drop_permille in 0u32..31,
        gc in any::<bool>(),
        use_tsp in any::<bool>(),
    ) {
        set_op_trace(true);
        let p = dsm_platform(procs, ivy, seed, drop_permille, gc);
        let (threaded, coop) = if use_tsp {
            let w = tsp::Tsp::new(8);
            (fingerprint(EngineKind::Threaded, &p, &w), fingerprint(EngineKind::Coop, &p, &w))
        } else {
            let w = sor::Sor::tiny();
            (fingerprint(EngineKind::Threaded, &p, &w), fingerprint(EngineKind::Coop, &p, &w))
        };
        prop_assert_eq!(&threaded, &coop, "{}: engines diverge", p.key());
    }
}

/// The panic message a run dies with on the given engine.
fn verdict<W: Workload + std::panic::RefUnwindSafe>(
    kind: EngineKind,
    p: &Platform,
    w: &W,
) -> String {
    let r = catch_unwind(AssertUnwindSafe(|| {
        run_workload_traced_with(kind, p, w, None)
    }));
    let payload = r.expect_err("the run must abort");
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("watchdog panics carry a message")
}

#[test]
fn budget_watchdog_verdicts_match_across_engines() {
    // A budget far below any real finishing time: the watchdog fires
    // mid-run and dumps every processor's state plus machine diagnostics.
    let p = Platform::AsCluster {
        procs: 3,
        part1: false,
        so: None,
        tuning: DsmTuning {
            watchdog_budget: Some(10_000),
            ..Default::default()
        },
    };
    let w = sor::Sor::tiny();
    let threaded = verdict(EngineKind::Threaded, &p, &w);
    let coop = verdict(EngineKind::Coop, &p, &w);
    assert!(
        threaded.contains("passed the cycle budget"),
        "got: {threaded}"
    );
    assert!(threaded.contains("machine diagnostics"), "got: {threaded}");
    assert_eq!(threaded, coop, "watchdog dumps must be byte-identical");
}

#[test]
fn deadlock_verdicts_match_across_engines() {
    // Every lock-class message dropped, no retransmission: the first
    // remote acquire hangs its cascade and the all-blocked detector aborts
    // the run with a dump naming each blocked processor and what it waits
    // on.
    let p = Platform::AsCluster {
        procs: 2,
        part1: false,
        so: None,
        tuning: DsmTuning {
            faults: Some(
                FaultPlan::drop_rate(7, 1.0)
                    .with_class_mask(tmk::dsm::MsgClass::SyncLock.bit()),
            ),
            ..Default::default()
        },
    };
    let w = tsp::Tsp::new(8);
    let threaded = verdict(EngineKind::Threaded, &p, &w);
    let coop = verdict(EngineKind::Coop, &p, &w);
    assert!(threaded.contains("simulation deadlock"), "got: {threaded}");
    assert!(threaded.contains("blocked"), "got: {threaded}");
    assert_eq!(threaded, coop, "deadlock dumps must be byte-identical");
}
