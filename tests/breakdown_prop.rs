//! Property test for the cycle-attribution invariant: however a run is
//! configured — LRC or IVY, perfect network or seeded message loss — every
//! processor's six category counters (compute, memory stall, protocol,
//! synchronization idle, network, stolen) sum *exactly* to its finishing
//! clock, and arming the tracer never changes the clock itself.

use proptest::prelude::*;

use tmk::apps::{sor, tsp};
use tmk::dsm::RetransmitPolicy;
use tmk::machines::{
    run_workload, run_workload_traced, DsmProtocol, DsmTuning, Platform,
};
use tmk::net::FaultPlan;
use tmk::parmacs::Workload;

fn dsm_platform(procs: usize, ivy: bool, seed: u64, drop_permille: u32) -> Platform {
    Platform::AsCluster {
        procs,
        part1: false,
        so: None,
        tuning: DsmTuning {
            protocol: if ivy { DsmProtocol::Ivy } else { DsmProtocol::Lrc },
            faults: (drop_permille > 0)
                .then(|| FaultPlan::drop_rate(seed, drop_permille as f64 / 1000.0)),
            reliability: (drop_permille > 0).then(RetransmitPolicy::default),
            // Safety net far above any legitimate run, in case a random
            // configuration ever livelocks retransmission.
            watchdog_budget: Some(4_000_000_000_000),
            ..Default::default()
        },
    }
}

fn check_one<W: Workload>(p: &Platform, w: &W) -> Result<(), TestCaseError> {
    let (traced, buf) = run_workload_traced(p, w, Some(0));
    let buf = buf.expect("tracing armed");
    // The invariant under test: categories sum to the final clocks.
    let ledgers = buf.check(&traced.report.proc_cycles);
    prop_assert!(ledgers.is_ok(), "{}: {}", p.key(), ledgers.unwrap_err());
    // And observation is free: the untraced run has the same clocks.
    let plain = run_workload(p, w);
    prop_assert_eq!(
        plain.report.proc_cycles,
        traced.report.proc_cycles,
        "{}: tracing changed the simulation",
        p.key()
    );
    prop_assert_eq!(plain.results, traced.results);
    Ok(())
}

proptest! {
    // Each case simulates a full (tiny) parallel run twice; a handful of
    // cases already covers LRC/IVY x clean/lossy x 2-4 processors.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn breakdown_sums_to_clock_on_random_dsm_runs(
        procs in 2usize..5,
        ivy in any::<bool>(),
        seed in any::<u64>(),
        drop_permille in 0u32..31,
        use_tsp in any::<bool>(),
    ) {
        let p = dsm_platform(procs, ivy, seed, drop_permille);
        if use_tsp {
            check_one(&p, &tsp::Tsp::new(8))?;
        } else {
            check_one(&p, &sor::Sor::tiny())?;
        }
    }
}
