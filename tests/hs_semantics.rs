//! Hybrid-machine (HS) semantics the paper calls out: intra-node sharing
//! and synchronization need no messages; only inter-node activity touches
//! the network; diff coalescing shrinks data movement versus AS.

use tmk::apps::{sor, water};
use tmk::machines::{run_on, run_workload, Platform};
use tmk::parmacs::SharedSlice;

fn hs(nodes: usize, per_node: usize) -> Platform {
    Platform::hs_sim(nodes, per_node)
}

#[test]
fn intra_node_lock_passing_needs_no_messages() {
    // All processors on ONE node: the token never leaves, so a
    // lock-protected counter generates zero network messages.
    let out = run_on(
        &hs(1, 8),
        1 << 14,
        |alloc| alloc.slice::<u64>(1),
        |_, _| {},
        |sys, counter: &SharedSlice<u64>| {
            for _ in 0..20 {
                sys.lock(3);
                let v = counter.get(sys, 0);
                counter.set(sys, 0, v + 1);
                sys.unlock(3);
            }
            sys.barrier(0);
            counter.get(sys, 0)
        },
    );
    assert!(out.results.into_iter().all(|v| v == 160));
    assert_eq!(out.report.traffic.total_msgs(), 0);
}

#[test]
fn cross_node_locks_do_use_messages() {
    let out = run_on(
        &hs(2, 4),
        1 << 14,
        |alloc| alloc.slice::<u64>(1),
        |_, _| {},
        |sys, counter: &SharedSlice<u64>| {
            for _ in 0..10 {
                sys.lock(3);
                let v = counter.get(sys, 0);
                counter.set(sys, 0, v + 1);
                sys.unlock(3);
            }
            sys.barrier(0);
            counter.get(sys, 0)
        },
    );
    assert!(out.results.into_iter().all(|v| v == 80));
    assert!(out.report.traffic.lock_msgs > 0, "token must cross nodes");
}

#[test]
fn hierarchical_barrier_sends_one_arrival_per_node() {
    // 4 nodes x 4 procs, one barrier episode: 3 arrival messages reach the
    // manager node and 3 departures leave it (the manager's own node is
    // local). Each is (nodes - 1), not (procs - 1).
    let out = run_on(
        &hs(4, 4),
        1 << 14,
        |alloc| alloc.slice::<u64>(1),
        |_, _| {},
        |sys, _: &SharedSlice<u64>| sys.barrier(0),
    );
    let t = out.report.traffic;
    assert_eq!(t.barrier_msgs, 6, "3 arrivals + 3 departures");
}

#[test]
fn hs_moves_less_data_than_as_for_sor() {
    // The paper's Figure 13: coalesced diffs and in-node neighbor sharing
    // cut HS's data movement well below AS at equal processor counts.
    let w = sor::Sor::tiny();
    let as_t = run_workload(&Platform::as_sim(8), &w).report.traffic;
    let hs_t = run_workload(&hs(2, 4), &w).report.traffic;
    assert!(
        hs_t.total_bytes() < as_t.total_bytes() / 2,
        "HS {} bytes vs AS {} bytes",
        hs_t.total_bytes(),
        as_t.total_bytes()
    );
    assert!(hs_t.total_msgs() < as_t.total_msgs());
}

#[test]
fn hs_beats_as_on_mwater_at_scale() {
    // Figure 11's ordering at 16 processors: HS above AS.
    let w = water::Water::tiny(water::WaterMode::Modified);
    let as_s = run_workload(&Platform::as_sim(16), &w)
        .report
        .window_seconds();
    let hs_s = run_workload(&hs(2, 8), &w).report.window_seconds();
    assert!(hs_s < as_s, "HS {hs_s} should beat AS {as_s}");
}

#[test]
fn many_nodes_chasing_one_token_stays_correct() {
    // Regression: several nodes can have outstanding node-level acquires
    // for the same lock at once; the pending-acquire guard must track
    // (lock, node) pairs, not one node per lock.
    let out = run_on(
        &hs(4, 4),
        1 << 14,
        |alloc| alloc.slice::<u64>(1),
        |_, _| {},
        |sys, counter: &SharedSlice<u64>| {
            for _ in 0..8 {
                sys.lock(5);
                let v = counter.get(sys, 0);
                sys.compute(200);
                counter.set(sys, 0, v + 1);
                sys.unlock(5);
            }
            sys.barrier(0);
            counter.get(sys, 0)
        },
    );
    assert!(out.results.into_iter().all(|v| v == 16 * 8));
}

#[test]
fn single_hs_node_equals_bus_machine_semantics() {
    // One 8-processor HS node behaves like a small bus machine: coherent,
    // no DSM traffic, bus statistics populated.
    let w = sor::Sor::tiny();
    let out = run_workload(&hs(1, 8), &w);
    assert_eq!(out.report.traffic.total_msgs(), 0);
    let bus = out.report.bus.expect("HS reports bus stats");
    assert!(bus.transactions > 0);
    let seq = sor::reference(&w);
    let total: f64 = out.results.into_iter().sum();
    assert!((total - seq).abs() < 1e-9 * seq.abs().max(1.0));
}
