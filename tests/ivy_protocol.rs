//! The IVY (sequential-consistency, single-writer) protocol as the AS
//! cluster's DSM: correctness on the application suite plus the
//! qualitative LRC-vs-SC comparison the TreadMarks line of work is built
//! on.

use tmk::apps::{sor, tsp, water};
use tmk::machines::{run_workload, DsmProtocol, DsmTuning, Platform};
use tmk::parmacs::Workload;

fn ivy(procs: usize) -> Platform {
    Platform::AsCluster {
        procs,
        part1: true,
        so: None,
        tuning: DsmTuning {
            protocol: DsmProtocol::Ivy,
            ..Default::default()
        },
    }
}

#[test]
fn sor_correct_under_ivy() {
    let w = sor::Sor::tiny();
    let seq = sor::reference(&w);
    let out = run_workload(&ivy(4), &w);
    let total: f64 = out.results.into_iter().sum();
    assert!((total - seq).abs() < 1e-9 * seq.abs().max(1.0));
    assert!(out.report.traffic.miss_msgs > 0);
}

#[test]
fn tsp_finds_optimum_under_ivy() {
    let w = tsp::Tsp::new(9);
    let optimal = f64::from(w.optimal());
    let out = run_workload(&ivy(4), &w);
    assert!(out.results.into_iter().all(|v| v == optimal));
}

#[test]
fn water_correct_under_ivy() {
    let w = water::Water::tiny(water::WaterMode::Modified);
    let seq = water::reference(&w);
    let out = run_workload(&ivy(4), &w);
    let total: f64 = out.results.into_iter().sum();
    assert!((total - seq).abs() < 1e-6 * seq.abs().max(1.0));
}

#[test]
fn ivy_single_processor_needs_no_messages() {
    let w = sor::Sor::tiny();
    let out = run_workload(&ivy(1), &w);
    assert_eq!(out.report.traffic.total_msgs(), 0);
}

#[test]
fn ivy_is_deterministic() {
    let w = water::Water::tiny(water::WaterMode::Original);
    let a = run_workload(&ivy(4), &w).report.cycles;
    let b = run_workload(&ivy(4), &w).report.cycles;
    assert_eq!(a, b);
}

#[test]
fn lrc_moves_less_data_than_ivy_on_sor() {
    // The point of multiple-writer lazy release consistency: SOR's
    // boundary rows cost word diffs under LRC but whole-page ownership
    // ping-pong under IVY.
    let w = sor::Sor::tiny();
    let lrc = run_workload(&Platform::treadmarks(4), &w).report;
    let sc = run_workload(&ivy(4), &w).report;
    assert!(
        lrc.traffic.miss_bytes < sc.traffic.miss_bytes,
        "LRC {} bytes vs IVY {} bytes",
        lrc.traffic.miss_bytes,
        sc.traffic.miss_bytes
    );
}

#[test]
fn lrc_outperforms_ivy_on_false_sharing_heavy_water() {
    // Water's molecule records share pages: IVY pays ownership transfers
    // on nearly every force update; TreadMarks' diffs let writers overlap.
    let w = water::Water::tiny(water::WaterMode::Modified);
    let lrc = run_workload(&Platform::treadmarks(4), &w)
        .report
        .window_seconds();
    let sc = run_workload(&ivy(4), &w).report.window_seconds();
    assert!(
        lrc < sc,
        "LRC {lrc}s should beat sequential-consistency DSM {sc}s"
    );
}
