//! The case study's core premise: the same PARMACS program computes the
//! same answer on every shared-memory implementation. These tests run each
//! application, at reduced size, on all five platforms and compare
//! checksums (tolerating float reassociation across band partitionings).

use tmk::apps::{ilink, sor, tsp, water};
use tmk::machines::{run_workload, Platform};
use tmk::parmacs::Workload;

fn platforms(procs: usize) -> Vec<Platform> {
    vec![
        Platform::Sgi { procs: procs.min(8) },
        Platform::treadmarks(procs.min(8)),
        Platform::as_sim(procs),
        Platform::ah(procs),
        Platform::hs_sim(procs.div_ceil(4), 4),
    ]
}

fn total<W: Workload>(platform: &Platform, w: &W) -> f64 {
    let out = run_workload(platform, w);
    out.results.into_iter().sum()
}

fn assert_close(a: f64, b: f64, what: &str) {
    let tol = 1e-9 * a.abs().max(b.abs()).max(1.0);
    assert!(
        (a - b).abs() <= tol,
        "{what}: {a} vs {b} (tolerance {tol})"
    );
}

#[test]
fn sor_agrees_everywhere() {
    let cfg = sor::Sor::tiny();
    let reference = total(&Platform::Dec, &cfg);
    assert!(reference.is_finite());
    for p in platforms(8) {
        let v = total(&p, &cfg);
        // Red-black SOR is partition-independent: results are equal up to
        // the final summation order.
        assert_close(v, reference, p.name());
    }
}

#[test]
fn tsp_finds_the_optimum_everywhere() {
    let cfg = tsp::Tsp::new(9);
    let optimal = f64::from(cfg.optimal());
    for p in platforms(8) {
        let out = run_workload(&p, &cfg);
        for (pid, v) in out.results.iter().enumerate() {
            assert_eq!(*v, optimal, "{} proc {pid}", p.name());
        }
    }
}

#[test]
fn tsp_eager_release_same_answer() {
    // 13 cities: the 2-opt initial bound is NOT optimal, so the bound lock
    // is actually released with updates during the search.
    let cfg = tsp::Tsp::new(13);
    let optimal = f64::from(cfg.optimal());
    assert!(cfg.greedy_bound() > cfg.optimal(), "instance must improve");
    let platform = Platform::AsCluster {
        procs: 4,
        part1: true,
        so: None,
        tuning: tmk::machines::DsmTuning {
            eager_locks: vec![tsp::BOUND_LOCK],
            ..Default::default()
        },
    };
    let out = run_workload(&platform, &cfg);
    assert!(out.results.into_iter().all(|v| v == optimal));
    assert!(
        out.report.traffic.update_msgs > 0,
        "eager release broadcasts updates"
    );
}

#[test]
fn water_agrees_everywhere() {
    for mode in [water::WaterMode::Original, water::WaterMode::Modified] {
        let cfg = water::Water::tiny(mode);
        let reference = total(&Platform::Dec, &cfg);
        for p in platforms(8) {
            let v = total(&p, &cfg);
            // Force accumulation order varies with partitioning; the
            // physics is tiny-step, so agreement is tight but not exact.
            let tol = 1e-6 * reference.abs();
            assert!(
                (v - reference).abs() < tol,
                "{} ({mode:?}): {v} vs {reference}",
                p.name()
            );
        }
    }
}

#[test]
fn ilink_agrees_at_fixed_proc_count() {
    // ILINK's synthetic activity pattern depends on the partitioning, so
    // compare platforms at the same processor count only.
    let cfg = ilink::Ilink {
        pedigree: ilink::Pedigree::tiny(),
    };
    let procs = 4;
    let reference = total(&Platform::Sgi { procs }, &cfg);
    for p in [
        Platform::treadmarks(procs),
        Platform::as_sim(procs),
        Platform::ah(procs),
        Platform::hs_sim(2, 2),
    ] {
        let v = total(&p, &cfg);
        assert_close(v, reference, p.name());
    }
}

#[test]
fn single_processor_platforms_agree_with_sequential() {
    let cfg = sor::Sor::tiny();
    let seq = sor::reference(&cfg);
    for p in [
        Platform::Dec,
        Platform::Sgi { procs: 1 },
        Platform::treadmarks(1),
        Platform::ah(1),
    ] {
        assert_close(total(&p, &cfg), seq, p.name());
    }
}

#[test]
fn treadmarks_overhead_on_one_processor_is_negligible() {
    // Table 1's observation: running under TreadMarks has almost no effect
    // on single-processor execution time. Use a non-trivial grid so fixed
    // startup costs (first-touch faults) do not dominate.
    let cfg = sor::Sor::small();
    let dec = run_workload(&Platform::Dec, &cfg).report.cycles;
    let tmk1 = run_workload(&Platform::treadmarks(1), &cfg).report.cycles;
    let ratio = tmk1 as f64 / dec as f64;
    assert!(
        (0.95..1.10).contains(&ratio),
        "1-proc TreadMarks / DEC cycle ratio {ratio}"
    );
}
