//! Property tests for crash-fault recovery: a single node crash scheduled at
//! *any* cycle — under LRC or IVY, on a clean or lossy network, permanent or
//! transient — must leave the application results byte-identical to the
//! crash-free run once barrier-epoch checkpointing and the retransmission
//! layer are armed, and every cycle the recovery charges must land in the
//! ledger without breaking the exact sum-to-clock invariant.

use std::panic::{catch_unwind, AssertUnwindSafe};

use proptest::prelude::*;

use tmk::apps::{sor, tsp};
use tmk::dsm::RetransmitPolicy;
use tmk::machines::{
    run_workload, run_workload_traced, DsmProtocol, DsmTuning, Platform,
};
use tmk::net::FaultPlan;
use tmk::parmacs::Workload;

/// An RTO aggressive enough that retransmission exhaustion (the failure
/// detector) fires within the tiny proptest runs; the default 1M-cycle
/// timeout would stretch detection past the end of most of them.
fn snappy() -> RetransmitPolicy {
    RetransmitPolicy {
        timeout: 50_000,
        backoff: 2,
        max_retries: 4,
        adaptive: None,
    }
}

fn platform(
    procs: usize,
    ivy: bool,
    seed: u64,
    drop_permille: u32,
    crash: Option<(usize, u64, Option<u64>)>,
) -> Platform {
    let mut plan = FaultPlan::drop_rate(seed, drop_permille as f64 / 1000.0);
    if let Some((node, at, restart)) = crash {
        plan = plan.with_crash(node, at, restart);
    }
    Platform::AsCluster {
        procs,
        part1: false,
        so: None,
        tuning: DsmTuning {
            protocol: if ivy { DsmProtocol::Ivy } else { DsmProtocol::Lrc },
            faults: Some(plan),
            reliability: Some(snappy()),
            checkpoints: crash.is_some(),
            // Safety net far above any legitimate run, in case a random
            // configuration ever livelocks retransmission or recovery.
            watchdog_budget: Some(4_000_000_000_000),
            ..Default::default()
        },
    }
}

fn check_one<W: Workload>(
    procs: usize,
    ivy: bool,
    seed: u64,
    drop_permille: u32,
    crash: (usize, u64, Option<u64>),
    w: &W,
) -> Result<(), TestCaseError> {
    let base = run_workload(&platform(procs, ivy, seed, drop_permille, None), w);
    let p = platform(procs, ivy, seed, drop_permille, Some(crash));
    let (run, buf) = run_workload_traced(&p, w, Some(0));
    let buf = buf.expect("tracing armed");

    // The headline property: the survivors reconstruct the crash-free
    // application output exactly, whatever the crash cycle hit.
    prop_assert_eq!(
        &run.results,
        &base.results,
        "{}: results diverged from the crash-free run",
        p.key()
    );
    // Recovery charges must keep the per-processor category ledgers summing
    // exactly to the finishing clocks.
    let ledgers = buf.check(&run.report.proc_cycles);
    prop_assert!(ledgers.is_ok(), "{}: {}", p.key(), ledgers.unwrap_err());

    let rec = &run.report.recovery;
    if rec.rollbacks > 0 {
        prop_assert_eq!(rec.suspected, rec.rollbacks, "{}", p.key());
        prop_assert!(
            rec.recovery_cycles > 0,
            "{}: rollback charged no recovery cycles",
            p.key()
        );
        prop_assert!(rec.checkpoints > 0, "{}", p.key());
    }
    // A crash-armed run replays bit-exactly: same clocks, same recovery
    // counters, same output.
    let again = run_workload(&p, w);
    prop_assert_eq!(&again.results, &run.results, "{}", p.key());
    prop_assert_eq!(
        again.report.proc_cycles,
        run.report.proc_cycles,
        "{}: crash replay is not deterministic",
        p.key()
    );
    prop_assert_eq!(again.report.recovery, run.report.recovery, "{}", p.key());
    Ok(())
}

proptest! {
    // Each case simulates three full (tiny) parallel runs; a handful of
    // cases already covers LRC/IVY x clean/lossy x permanent/transient x
    // crash cycles from the first page fetch to past the natural end.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn single_crash_at_any_cycle_recovers_byte_identically(
        procs in 2usize..5,
        ivy in any::<bool>(),
        seed in any::<u64>(),
        drop_permille in 0u32..16,
        node in 0usize..4,
        crash_at in 10_000u64..600_000,
        restart in 0u64..4,
        use_tsp in any::<bool>(),
    ) {
        // 0 encodes a permanent crash; otherwise a transient outage shorter
        // than the detection window, masked by retransmission alone.
        let restart = (restart > 0).then_some(restart * 60_000);
        let crash = (node % procs, crash_at, restart);
        if use_tsp {
            check_one(procs, ivy, seed, drop_permille, crash, &tsp::Tsp::new(8))?;
        } else {
            check_one(procs, ivy, seed, drop_permille, crash, &sor::Sor::tiny())?;
        }
    }
}

/// Without a checkpoint to roll back to, a detected crash is unrecoverable:
/// the run must abort with a message naming the dead node rather than wedge
/// or return wrong results.
#[test]
fn unrecoverable_crash_aborts_naming_the_dead_node() {
    let p = Platform::AsCluster {
        procs: 4,
        part1: false,
        so: None,
        tuning: DsmTuning {
            faults: Some(FaultPlan::crash_schedule(7).with_crash(2, 100_000, None)),
            reliability: Some(snappy()),
            checkpoints: false,
            watchdog_budget: Some(4_000_000_000_000),
            ..Default::default()
        },
    };
    let err = catch_unwind(AssertUnwindSafe(|| run_workload(&p, &sor::Sor::tiny())))
        .expect_err("an unrecoverable crash must abort the run");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("node 2 crashed and is unrecoverable"),
        "abort message does not name the dead node: {msg}"
    );
}
