//! Statistics-accounting invariants: the numbers the benchmark harness
//! reports must be internally consistent on every platform.

use tmk::apps::{sor, tsp, water};
use tmk::machines::{run_workload, Platform};
use tmk::net::SoftwareOverhead;

#[test]
fn window_never_exceeds_totals() {
    let w = sor::Sor::tiny();
    for p in [
        Platform::treadmarks(4),
        Platform::as_sim(8),
        Platform::hs_sim(2, 4),
    ] {
        let r = run_workload(&p, &w).report;
        let wt = r.window_traffic();
        let t = r.traffic;
        assert!(r.mark_cycles <= r.cycles, "{}", p.name());
        assert!(wt.total_msgs() <= t.total_msgs());
        assert!(wt.total_bytes() <= t.total_bytes());
        assert_eq!(
            t.total_msgs(),
            t.miss_msgs + t.lock_msgs + t.barrier_msgs + t.update_msgs
        );
        assert_eq!(
            t.total_bytes(),
            t.miss_bytes + t.consistency_bytes + t.header_bytes
        );
    }
}

#[test]
fn barrier_only_apps_take_no_remote_locks() {
    let w = sor::Sor::tiny();
    let r = run_workload(&Platform::treadmarks(4), &w).report;
    assert_eq!(r.dsm.remote_lock_acquires, 0, "SOR uses barriers only");
    assert!(r.dsm.barriers > 0);
    assert_eq!(r.traffic.lock_msgs, 0);
}

#[test]
fn lock_heavy_app_shows_lock_traffic() {
    let w = water::Water::tiny(water::WaterMode::Original);
    let r = run_workload(&Platform::treadmarks(4), &w).report;
    assert!(r.dsm.remote_lock_acquires > 0);
    assert!(r.traffic.lock_msgs > r.traffic.barrier_msgs);
}

#[test]
fn mwater_takes_far_fewer_locks_than_water() {
    let orig = run_workload(
        &Platform::treadmarks(4),
        &water::Water::tiny(water::WaterMode::Original),
    )
    .report
    .dsm;
    let modi = run_workload(
        &Platform::treadmarks(4),
        &water::Water::tiny(water::WaterMode::Modified),
    )
    .report
    .dsm;
    let orig_locks = orig.remote_lock_acquires + orig.local_lock_acquires;
    let modi_locks = modi.remote_lock_acquires + modi.local_lock_acquires;
    assert!(
        orig_locks > 3 * modi_locks,
        "Water {orig_locks} vs M-Water {modi_locks}"
    );
}

#[test]
fn diffs_created_lazily_only_when_requested() {
    // A single writer whose pages nobody reads creates twins but no diffs.
    let w = sor::Sor::tiny();
    let r = run_workload(&Platform::treadmarks(2), &w).report;
    assert!(r.dsm.twins_created > 0);
    // Only boundary pages are ever requested; interior pages never diff.
    assert!(
        r.dsm.diffs_created < r.dsm.intervals_closed * 3,
        "diffs {} should be far fewer than intervals {} x pages",
        r.dsm.diffs_created,
        r.dsm.intervals_closed
    );
}

#[test]
fn hardware_platforms_report_their_fabric() {
    let w = sor::Sor::tiny();
    let sgi = run_workload(&Platform::Sgi { procs: 4 }, &w).report;
    assert!(sgi.bus.is_some());
    assert!(sgi.directory.is_none());
    assert_eq!(sgi.traffic.total_msgs(), 0);

    let ah = run_workload(&Platform::ah(4), &w).report;
    assert!(ah.directory.is_some());
    assert!(ah.bus.is_none());

    let hs = run_workload(&Platform::hs_sim(2, 2), &w).report;
    assert!(hs.bus.is_some());
    assert!(hs.traffic.total_msgs() > 0);
}

#[test]
fn reduced_overheads_never_slow_a_dsm_app_down() {
    // Figures 14-16's premise: lower fixed/per-word costs help (or at
    // least never hurt) the software platforms.
    let w = tsp::Tsp::new(10);
    let base = SoftwareOverhead::sim_baseline();
    let faster = base.with_fixed(100).with_per_word(1);
    let slow = run_workload(&Platform::as_sim(8), &w).report.cycles;
    let quick = run_workload(
        &Platform::AsCluster {
            procs: 8,
            part1: false,
            so: Some(faster),
            tuning: Default::default(),
        },
        &w,
    )
    .report
    .cycles;
    assert!(quick <= slow, "faster interface {quick} vs baseline {slow}");
}

#[test]
fn clock_rates_match_the_platform_era() {
    let w = sor::Sor::tiny();
    assert_eq!(
        run_workload(&Platform::Dec, &w).report.clock_hz,
        40_000_000
    );
    assert_eq!(
        run_workload(&Platform::as_sim(2), &w).report.clock_hz,
        100_000_000
    );
}

#[test]
fn per_class_counters_reconcile_with_recorded_totals() {
    // Every message is recorded twice: once into its class counter and
    // once into the run-total cross-check; `Traffic::check` proves the
    // two bookkeepings agree exactly, per platform.
    let w = water::Water::tiny(water::WaterMode::Original);
    for p in [
        Platform::Dec,
        Platform::Sgi { procs: 4 },
        Platform::treadmarks(4),
        Platform::as_sim(4),
        Platform::hs_sim(2, 2),
        Platform::ah(4),
    ] {
        let r = run_workload(&p, &w).report;
        r.traffic
            .check()
            .unwrap_or_else(|e| panic!("{}: {e}", p.name()));
        r.mark_traffic
            .check()
            .unwrap_or_else(|e| panic!("{} (mark snapshot): {e}", p.name()));
    }
    // On a software platform the totals are nonzero and exact.
    let t = run_workload(&Platform::as_sim(4), &tsp::Tsp::new(10))
        .report
        .traffic;
    assert!(t.msgs_recorded > 0);
    assert_eq!(t.total_msgs(), t.msgs_recorded);
    assert_eq!(t.total_bytes(), t.bytes_recorded);
}
