#!/usr/bin/env bash
# Regenerates every table and figure of the ISCA'94 reproduction into
# results/ (see EXPERIMENTS.md for the paper-vs-measured discussion).
set -euo pipefail
cd "$(dirname "$0")/.."
for b in table1 table2 fig01_08 fig09_11 fig12_13 fig14_16 ablations; do
  echo "== $b"
  cargo run --release -q -p tmk-bench --bin "$b" | tee "results/$b.txt"
done
