#!/usr/bin/env bash
# Regenerates every table and figure of the ISCA'94 reproduction — plus the
# chaos sweep and the traced time-breakdown decomposition — through the
# unified experiment driver: one build, one suite run fanned across host
# cores, text and JSON records emitted together into results/ plus the
# BENCH_results.json suite summary. Exits non-zero if any simulated run or
# any rendered section fails.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc 2>/dev/null || echo 1)}

cargo build --release -p tmk-bench

./target/release/suite \
    --jobs "$JOBS" \
    --json --out results --bench-json BENCH_results.json

echo "regenerated results/*.{txt,json} and BENCH_results.json"
