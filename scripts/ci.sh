#!/bin/sh
# CI gate: tier-1 verification plus the quick smoke tier of the experiment
# suite (tiny inputs, 1-4 processors; covers every default experiment's
# sections, the scheduler, and the JSON emitters).
set -eu
cd "$(dirname "$0")/.."

echo "== tier-1: build + tests =="
cargo build --release
cargo test -q

echo "== smoke: quick-tier suite =="
mkdir -p target/smoke
./target/release/suite --quick --jobs "${JOBS:-$(nproc 2>/dev/null || echo 1)}" \
    --json --out target/smoke --bench-json target/smoke/BENCH_results.json \
    > target/smoke/suite.txt

echo "== chaos: fault-injection smoke (bounded by a host timeout) =="
# The watchdog aborts a hung simulation from inside, but a regression in the
# watchdog itself would hang CI; the host-side timeout is the backstop.
timeout "${CHAOS_TIMEOUT:-600}" \
    ./target/release/suite --experiment chaos --quick \
    --json --out target/smoke > target/smoke/chaos.txt

echo "== recovery: node-crash smoke (byte-identity asserted by the renderer) =="
# The experiment's renderer fails (nonzero exit) unless every crashed run
# reproduces the crash-free checksums, permanent crashes roll back, and
# transient outages are masked by retransmission alone; the grep below
# additionally pins that the quick tier actually exercised a rollback.
timeout "${CHAOS_TIMEOUT:-600}" \
    ./target/release/suite --experiment recovery --quick \
    --json --out target/smoke > target/smoke/recovery.txt
grep -q "rollbacks=1" target/smoke/recovery.txt \
    || { echo "recovery smoke saw no rollback"; exit 1; }

echo "== service: multi-tenant DSM service on the real-thread runtime =="
# The renderer fails unless every tenant stays byte-identical to its
# fault-free solo baseline under drops, delays and a scheduled node crash,
# and unless overload sheds loudly. The greps pin that the quick tier
# exercised a *real* runtime rollback and that baseline offered load was
# never shed.
timeout "${CHAOS_TIMEOUT:-600}" \
    ./target/release/suite --experiment service --quick \
    --json --out target/smoke > target/smoke/service.txt
grep -q "rollbacks=1" target/smoke/service.txt \
    || { echo "service smoke saw no live-cluster rollback"; exit 1; }
grep -q "shed=0" target/smoke/service.txt \
    || { echo "service smoke lost the zero-shed baseline"; exit 1; }

echo "== scaling: barrier-time GC memory bound =="
# The experiment's renderer fails (nonzero exit) unless GC-on runs stay
# result-identical to GC-free and hold the diff-cache and interval-store
# high-water marks strictly below the uncollected baseline.
timeout "${CHAOS_TIMEOUT:-600}" \
    ./target/release/suite --experiment scaling --quick \
    --json --out target/smoke > target/smoke/scaling.txt

echo "== engines: quick tier under both backends must agree byte-for-byte =="
# The threaded and cooperative engines implement the same conservative
# simulation semantics; any divergence in rendered text or simulated JSON
# (host-side fields aside) is a correctness bug, not a tolerance.
rm -rf target/smoke/eng-threaded target/smoke/eng-coop
timeout "${CHAOS_TIMEOUT:-600}" \
    ./target/release/suite --quick --engine threaded \
    --json --out target/smoke/eng-threaded \
    --bench-json target/smoke/eng-threaded/BENCH_results.json \
    > target/smoke/eng-threaded.txt
timeout "${CHAOS_TIMEOUT:-600}" \
    ./target/release/suite --quick --engine coop \
    --json --out target/smoke/eng-coop \
    --bench-json target/smoke/eng-coop/BENCH_results.json \
    > target/smoke/eng-coop.txt
diff target/smoke/eng-threaded.txt target/smoke/eng-coop.txt
# Strip the deliberately host-dependent fields before comparing records.
strip='"host_ms"\|"engine"\|"wall_ms"\|"total_host_ms"'
for f in target/smoke/eng-threaded/*.json; do
    base="$(basename "$f")"
    grep -v "$strip" "$f" > target/smoke/eng-a.stripped
    grep -v "$strip" "target/smoke/eng-coop/$base" > target/smoke/eng-b.stripped
    diff target/smoke/eng-a.stripped target/smoke/eng-b.stripped \
        || { echo "engines diverge in $base"; exit 1; }
done

echo "== engines: breakdown traces identical across backends =="
rm -rf target/smoke/trace-threaded target/smoke/trace-coop
timeout "${CHAOS_TIMEOUT:-600}" \
    ./target/release/suite --experiment breakdown --quick --engine threaded \
    --trace target/smoke/trace-threaded > /dev/null
timeout "${CHAOS_TIMEOUT:-600}" \
    ./target/release/suite --experiment breakdown --quick --engine coop \
    --trace target/smoke/trace-coop > /dev/null
for f in target/smoke/trace-threaded/*.trace.json; do
    ./target/release/suite trace-diff "$f" \
        "target/smoke/trace-coop/$(basename "$f")" | grep -q "no divergence"
done

echo "== engines: host-wall sanity (coop at least as fast as threaded) =="
timeout "${CHAOS_TIMEOUT:-900}" \
    ./target/release/suite engine-bench --quick --require-speedup 1.0 \
    > target/smoke/engine_bench.txt

echo "== trace: breakdown decomposition + trace determinism =="
# Two traced quick-tier runs must record byte-identical Chrome traces; the
# suite validates each document against its JSON parser before writing.
rm -rf target/smoke/trace-a target/smoke/trace-b
timeout "${CHAOS_TIMEOUT:-600}" \
    ./target/release/suite --experiment breakdown --quick \
    --trace target/smoke/trace-a \
    --json --out target/smoke > target/smoke/breakdown.txt
timeout "${CHAOS_TIMEOUT:-600}" \
    ./target/release/suite --experiment breakdown --quick \
    --trace target/smoke/trace-b > /dev/null
for f in target/smoke/trace-a/*.trace.json; do
    [ -s "$f" ] || { echo "empty trace: $f"; exit 1; }
    ./target/release/suite trace-diff "$f" \
        "target/smoke/trace-b/$(basename "$f")" | grep -q "no divergence"
done

echo "ci: all checks passed"
